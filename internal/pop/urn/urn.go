// Package urn implements an urn-compressed population-protocol engine: the
// configuration is stored as a multiset of distinct states (an "urn" of
// state counts) instead of a []S of agents, so memory and per-interaction
// cost scale with the number of distinct states m, not the population size
// n. For the Section 5 counting protocols m stays O(1), which makes
// populations of 10^6 and beyond simulable.
//
// The engine reproduces internal/pop's default pair scheduler in
// distribution. A uniform random unordered agent pair corresponds to a
// state pair {s, t} with probability c_s*c_t / C (s != t) or
// c_s*(c_s-1)/2 / C (s == t), where C = n(n-1)/2; both the exact Step and
// the compressed Run sample from this law through a wrand.Sampler — the
// O(1) alias sampler by default, or the O(log m) Fenwick tree reference
// when pop.Options.Sampler selects it.
//
// Pair selection is pluggable here too (internal/sched, via ApplyProfile),
// within what the compression can express. Identities are compressed
// away, so the weighted policy becomes per-slot weight multipliers on the
// same samplers — activity rates attach to state classes in order of
// first appearance, and the all-pairs total C generalizes to
// (T^2 - S2)/2 for T = sum m_i*c_i, S2 = sum m_i^2*c_i — while the
// id-based clustered and adversarial-delay policies are rejected at
// validation. Fault injection (crashes, freezes, churn) moves agents
// between the urn and per-fault side pools on a dedicated event clock;
// geometric skips are capped at the next pending fault event so no block
// jumps over one. A run without a profile never touches any of this and
// keeps the historical RNG stream byte for byte.
//
// The headline speedup is ineffective-step skipping: the engine maintains
// the total weight W of responsive state pairs (pairs whose interaction is
// effective) next to the all-pairs total C. A run of the exact scheduler
// between two effective interactions is a sequence of Bernoulli(p = W/C)
// failures, so its length is geometric and can be drawn in O(1); the
// simulated clock still advances in exact scheduler steps. Convergence
// tails that are >99.99% ineffective — the regime that caps the exact
// engine near n = 10^3 — collapse to one random draw each.
//
// On top of the skipping, Run executes effective interactions in blocks of
// Options.BatchSize conditional draws (the batched step loop): the
// stop-condition, cancellation, progress and budget checks move to block
// boundaries, and the per-interaction bookkeeping takes a fast path that
// applies transitions directly on the drawn slots — recycling a slot whose
// count reached zero in place for a newly appearing state instead of
// retiring and reallocating it. Each draw in a block still conditions on
// the exactly-updated weights, so the block is distribution-identical to
// Options.BatchSize sequential StepEffective calls; see DESIGN.md ("The
// urn engine") for the argument, and note only the slot *labeling* — never
// the state multiset — differs from the reference path.
//
// Protocol contract beyond pop.Protocol: S must be comparable, Apply must
// be a pure function of the two states (the engine calls it both to
// classify pair responsiveness and to apply transitions), and its
// effectiveness flag must not depend on argument order (Apply(a, b) and
// Apply(b, a) are either both effective or both not — true of any
// well-formed protocol on unordered pairs, and checked at run time). See
// DESIGN.md ("The urn engine") for the full equivalence argument.
package urn

import (
	"context"
	"fmt"
	"math"

	"shapesol/internal/obs"
	"shapesol/internal/pop"
	"shapesol/internal/sched"
	"shapesol/internal/wrand"
)

// Protocol is the urn engine's protocol contract. It is pop.Protocol[S]
// narrowed to comparable state types, so any value-state protocol of
// internal/pop (e.g. counting.UpperBound) satisfies both interfaces.
type Protocol[S comparable] interface {
	InitialState(id, n int) S
	Apply(a, b S) (na, nb S, effective bool)
	Halted(s S) bool
}

// Result summarizes a Run. Steps counts scheduler selections of the
// simulated exact scheduler, including the Skipped ineffective ones that
// were advanced past in O(1).
type Result struct {
	Steps     int64
	Effective int64
	Skipped   int64
	Reason    pop.StopReason
}

// World is one urn-compressed population instance. Not safe for concurrent
// use; run independent worlds in parallel instead (see internal/runner).
type World[S comparable] struct {
	n          int
	totalPairs int64 // n(n-1)/2
	opts       pop.Options
	proto      Protocol[S]
	rng        *wrand.RNG

	// Slot tables: one slot per distinct present state. Freed slots are
	// recycled so steady-state churn (e.g. a leader whose counter state
	// changes every effective interaction) allocates nothing.
	states     []S
	counts     []int64
	haltedSlot []bool
	freeSlots  []int
	live       []int32 // live slots, swap-removed
	livePos    []int32 // slot -> index in live, -1 when free

	// slotOf maps a present state to its slot, but only while more than
	// scanThreshold states are live: below that a linear scan of live is
	// cheaper than hashing the state, so mutations merely invalidate the
	// map (slotOfValid) and it is rebuilt lazily if the urn grows past the
	// threshold again.
	slotOf      map[S]int
	slotOfValid bool

	// countF weights each slot by its count: sampling it draws a uniform
	// random agent's state.
	countF wrand.Sampler

	// pairF holds one entry per *responsive* unordered slot pair {i, j},
	// weighted by the number of agent pairs realizing it (c_i*c_j, or
	// c_i*(c_i-1)/2 on the diagonal). Its Total() is the responsive weight
	// W of the geometric skip.
	pairF     wrand.Sampler
	pairAB    [][2]int32
	pairSlot  [][]int32 // [i][j] pair entry of {i, j}, -1 when unresponsive
	freePairs []int

	// batch is the resolved Options.BatchSize; skipW/skipDenom cache the
	// geometric-skip log denominator while the responsive weight is
	// unchanged (recomputing it from scratch is deterministic, so neither
	// field is snapshot state).
	batch     int
	skipW     int64
	skipDenom float64

	// countDirty defers countF updates within a batched block: the block
	// never samples countF, so the slots whose counts changed are queued
	// and flushed once at the block boundary (always empty between blocks,
	// hence not snapshot state).
	countDirty []int32

	// Scheduler/fault layer (ApplyProfile). profiled gates every dynamic
	// path; a profile-less world leaves all of this zero and runs the
	// historical code byte for byte. mult is the per-slot activity-rate
	// multiplier of the weighted policy (1 everywhere otherwise),
	// rateCursor the next state-class index into Profile.Rates. sumT and
	// sumS2 maintain T = sum m_i*c_i and S2 = sum m_i^2*c_i over the
	// in-urn population, so the all-pairs total (T^2-S2)/2 follows fault
	// and churn changes. Crashed and frozen agents live outside the urn in
	// side pools (they cannot be paired); poolHalted counts the halted
	// ones among them. skipC joins skipW as the skip-denominator cache key
	// once the all-pairs total is dynamic.
	prof       sched.Profile
	profiled   bool
	mult       []int64
	rateCursor int64
	sumT       int64
	sumS2      int64
	clock      *sched.Clock
	crashed    []S
	frozen     []S
	poolHalted int64
	present    int64
	inUrn      int64
	idSeq      int64
	skipC      int64

	steps, effective int64
	haltedCount      int64

	// metrics, when non-nil, receives fleet-wide counter deltas at the
	// CheckEvery boundary and at run exit. The pub* fields are the
	// already-published baselines (set at SetMetrics time, so restored
	// runs never re-publish their snapshot's counts).
	metrics                *obs.EngineMetrics
	faultEvents            int64
	blockFlushes           int64
	pubSteps, pubEffective int64
	pubFault, pubFlush     int64
	pubRebuilds            int64
}

// newSampler builds the weighted sampler selected by kind.
func newSampler(kind pop.SamplerKind, n int) wrand.Sampler {
	if kind == pop.SamplerFenwick {
		return wrand.NewFenwick(n)
	}
	return wrand.NewAlias(n)
}

// scanThreshold is the live-slot count below which state lookup scans the
// live list instead of maintaining the slotOf map: hashing a state costs
// more than a dozen-odd state compares, and the Section 5 protocols keep
// the number of distinct states far below this.
const scanThreshold = 16

// lookup resolves a state to its live slot.
func (w *World[S]) lookup(s S) (int, bool) {
	if len(w.live) <= scanThreshold {
		for _, k := range w.live {
			if w.states[k] == s {
				return int(k), true
			}
		}
		return 0, false
	}
	w.ensureSlotOf()
	slot, ok := w.slotOf[s]
	return slot, ok
}

// ensureSlotOf rebuilds the state-to-slot map after a phase of scan-mode
// mutations left it stale.
func (w *World[S]) ensureSlotOf() {
	if w.slotOfValid {
		return
	}
	clear(w.slotOf)
	for _, k := range w.live {
		w.slotOf[w.states[k]] = int(k)
	}
	w.slotOfValid = true
}

// mapInsert records state s at slot in the lookup structure; mapRemove
// drops it. In scan mode the map is simply invalidated.
func (w *World[S]) mapInsert(s S, slot int) {
	if len(w.live) <= scanThreshold {
		w.slotOfValid = false
		return
	}
	w.ensureSlotOf()
	w.slotOf[s] = slot
}

func (w *World[S]) mapRemove(s S) {
	if len(w.live) <= scanThreshold {
		w.slotOfValid = false
		return
	}
	w.ensureSlotOf()
	delete(w.slotOf, s)
}

// New builds a population of n agents in their initial states. n must be at
// least 2. Options are interpreted exactly as by pop.New (MaxSteps defaults
// to 100 million scheduler steps).
func New[S comparable](n int, proto Protocol[S], opts pop.Options) *World[S] {
	if n < 2 {
		panic(fmt.Sprintf("urn: population size %d < 2", n))
	}
	sched.RunDefaults(&opts.MaxSteps, &opts.CheckEvery, 100_000_000)
	if opts.Sampler == pop.SamplerDefault {
		opts.Sampler = pop.SamplerAlias
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = 256
	}
	w := &World[S]{
		n:           n,
		totalPairs:  int64(n) * int64(n-1) / 2,
		opts:        opts,
		proto:       proto,
		rng:         wrand.NewRNG(opts.Seed),
		slotOf:      make(map[S]int),
		slotOfValid: true,
		countF:      newSampler(opts.Sampler, 0),
		pairF:       newSampler(opts.Sampler, 0),
		batch:       opts.BatchSize,
	}
	for id := 0; id < n; id++ {
		w.addOne(proto.InitialState(id, n))
	}
	return w
}

// ApplyProfile installs a scheduler/fault profile on a freshly built
// World (before any stepping; a snapshot restore re-installs the profile
// first and then overwrites the layer's state). A profile that
// normalizes to the zero value leaves the engine on its historical path,
// byte-identical to a profile-less run. The id-based policies (clustered,
// adversarial-delay) are rejected by validation; fault injection
// additionally requires the batched path, whose block boundaries are the
// fault-application points.
func (w *World[S]) ApplyProfile(p sched.Profile) error {
	np, err := p.Normalize(sched.EngineUrn, w.n)
	if err != nil {
		return err
	}
	if np.IsZero() {
		return nil
	}
	if w.profiled {
		return fmt.Errorf("urn: profile already applied")
	}
	if w.steps != 0 || w.effective != 0 {
		return fmt.Errorf("urn: profile applied to a world that already stepped")
	}
	if np.HasFaults() && w.batch <= 1 {
		return fmt.Errorf("urn: fault injection requires the batched path (BatchSize > 1)")
	}
	w.prof = np
	w.profiled = true
	w.present = int64(w.n)
	w.inUrn = int64(w.n)
	w.idSeq = int64(w.n)
	w.mult = make([]int64, len(w.states))
	// Initial state classes take their rates in first-appearance order:
	// the live list is appended in exactly that order during New.
	for _, slot := range w.live {
		w.mult[slot] = w.nextMult()
	}
	for _, slot := range w.live {
		w.countF.Set(int(slot), w.counts[slot]*w.mult[slot])
		w.sumT += w.mult[slot] * w.counts[slot]
		w.sumS2 += w.mult[slot] * w.mult[slot] * w.counts[slot]
		w.syncPairs(int(slot))
	}
	if np.HasFaults() {
		w.clock = sched.NewClock(np, w.opts.Seed)
	}
	return nil
}

// nextMult returns the activity-rate multiplier of the next state class
// to appear (1 when the profile carries no rates).
func (w *World[S]) nextMult() int64 {
	if len(w.prof.Rates) == 0 {
		return 1
	}
	m := w.prof.Rates[w.rateCursor%int64(len(w.prof.Rates))]
	w.rateCursor++
	return m
}

// multOf returns slot's activity-rate multiplier.
func (w *World[S]) multOf(slot int) int64 {
	if w.mult == nil {
		return 1
	}
	return w.mult[slot]
}

// allPairs returns the current all-pairs weight total: the static
// n(n-1)/2 on the historical path, the dynamic (T^2-S2)/2 under a
// profile (which tracks rate multipliers, faults and churn).
func (w *World[S]) allPairs() int64 {
	if !w.profiled {
		return w.totalPairs
	}
	return (w.sumT*w.sumT - w.sumS2) / 2
}

// N returns the founding population size (arrivals and departures do not
// change it; see Present).
func (w *World[S]) N() int { return w.n }

// Present returns the number of non-departed agents, including crashed
// and frozen ones waiting in the side pools.
func (w *World[S]) Present() int64 {
	if !w.profiled {
		return int64(w.n)
	}
	return w.present
}

// Steps returns the number of simulated scheduler selections so far.
func (w *World[S]) Steps() int64 { return w.steps }

// Effective returns the number of effective interactions so far.
func (w *World[S]) Effective() int64 { return w.effective }

// Distinct returns the number of distinct states currently present.
func (w *World[S]) Distinct() int { return len(w.live) }

// HaltedCount returns the number of agents in halting states.
func (w *World[S]) HaltedCount() int64 { return w.haltedCount }

// ResponsiveWeight returns the number of unordered agent pairs whose
// interaction would be effective in the current configuration.
func (w *World[S]) ResponsiveWeight() int64 { return w.pairF.Total() }

// Count returns the multiplicity of state s.
func (w *World[S]) Count(s S) int64 {
	if slot, ok := w.lookup(s); ok {
		return w.counts[slot]
	}
	return 0
}

// CountWhere returns the number of agents whose state satisfies pred.
func (w *World[S]) CountWhere(pred func(S) bool) int64 {
	var total int64
	for _, slot := range w.live {
		if pred(w.states[slot]) {
			total += w.counts[slot]
		}
	}
	return total
}

// FindState returns some present state satisfying pred. The iteration
// order is arbitrary but deterministic given the operation history.
func (w *World[S]) FindState(pred func(S) bool) (S, bool) {
	for _, slot := range w.live {
		if pred(w.states[slot]) {
			return w.states[slot], true
		}
	}
	var zero S
	return zero, false
}

// ForEach visits every distinct present state with its multiplicity.
func (w *World[S]) ForEach(visit func(s S, count int64)) {
	for _, slot := range w.live {
		visit(w.states[slot], w.counts[slot])
	}
}

// pairWeight returns the weight of the unordered slot pair {i, j} under
// the current counts: the number of agent pairs realizing it, scaled by
// the slots' activity-rate multipliers when a weighted profile is
// installed (each agent pair {u, v} carries mass m_u*m_v).
func (w *World[S]) pairWeight(i, j int) int64 {
	if i == j {
		c := w.counts[i]
		p := c * (c - 1) / 2
		if w.mult != nil {
			p *= w.mult[i] * w.mult[i]
		}
		return p
	}
	p := w.counts[i] * w.counts[j]
	if w.mult != nil {
		p *= w.mult[i] * w.mult[j]
	}
	return p
}

// allocSlot installs state s in a fresh (or recycled) slot with count 0 and
// classifies its responsiveness against every live slot, including itself.
func (w *World[S]) allocSlot(s S) int {
	var slot int
	if k := len(w.freeSlots); k > 0 {
		slot = w.freeSlots[k-1]
		w.freeSlots = w.freeSlots[:k-1]
	} else {
		slot = len(w.states)
		var zero S
		w.states = append(w.states, zero)
		w.counts = append(w.counts, 0)
		w.haltedSlot = append(w.haltedSlot, false)
		w.livePos = append(w.livePos, -1)
		if w.mult != nil {
			w.mult = append(w.mult, 0)
		}
		w.pairSlot = append(w.pairSlot, nil)
		for i := range w.pairSlot {
			for len(w.pairSlot[i]) < len(w.states) {
				w.pairSlot[i] = append(w.pairSlot[i], -1)
			}
		}
		w.countF.Grow(len(w.states))
	}
	w.states[slot] = s
	w.counts[slot] = 0
	w.haltedSlot[slot] = w.proto.Halted(s)
	if w.mult != nil {
		w.mult[slot] = w.nextMult()
	}
	w.livePos[slot] = int32(len(w.live))
	w.live = append(w.live, int32(slot))
	w.mapInsert(s, slot)
	for _, j := range w.live {
		_, _, eff := w.proto.Apply(s, w.states[j])
		if int(j) != slot {
			// Enforce the contract at classification time: a protocol whose
			// effectiveness depends on argument order would make the urn
			// scheduler silently drop (or double) interactions.
			if _, _, rev := w.proto.Apply(w.states[j], s); rev != eff {
				panic("urn: Apply effectiveness depends on argument order; every scheduling policy of the compressed engine (see internal/sched) requires order-independent effectiveness")
			}
		}
		if eff {
			w.addPair(slot, int(j))
		}
	}
	return slot
}

// removePair retires the responsive-pair entry ps of slot pair {i, j}.
func (w *World[S]) removePair(i, j int, ps int32) {
	w.pairF.Set(int(ps), 0)
	w.pairSlot[i][j] = -1
	w.pairSlot[j][i] = -1
	w.freePairs = append(w.freePairs, int(ps))
}

// freeSlot retires a slot whose count reached zero: its responsive pairs,
// index entries and map key are all removed so the slot can be recycled.
func (w *World[S]) freeSlot(slot int) {
	for _, j := range w.live {
		if ps := w.pairSlot[slot][j]; ps >= 0 {
			w.removePair(slot, int(j), ps)
		}
	}
	pos := w.livePos[slot]
	last := int32(len(w.live) - 1)
	moved := w.live[last]
	w.live[pos] = moved
	w.livePos[moved] = pos
	w.live = w.live[:last]
	w.livePos[slot] = -1
	w.mapRemove(w.states[slot])
	var zero S
	w.states[slot] = zero
	w.freeSlots = append(w.freeSlots, slot)
}

// addPair registers the unordered slot pair {i, j} as responsive.
func (w *World[S]) addPair(i, j int) {
	var ps int
	if k := len(w.freePairs); k > 0 {
		ps = w.freePairs[k-1]
		w.freePairs = w.freePairs[:k-1]
	} else {
		ps = len(w.pairAB)
		w.pairAB = append(w.pairAB, [2]int32{})
		w.pairF.Grow(len(w.pairAB))
	}
	w.pairAB[ps] = [2]int32{int32(i), int32(j)}
	w.pairSlot[i][j] = int32(ps)
	w.pairSlot[j][i] = int32(ps)
	w.pairF.Set(ps, w.pairWeight(i, j))
}

// setCount updates a slot's multiplicity and resynchronizes every sampling
// structure touching it: the agent-count sampler, the halted tally, and
// the weights of all responsive pairs involving the slot (O(m) sampler
// updates). It is the reference path's primitive; the batched path uses
// setCountOnly + deferred syncs instead.
func (w *World[S]) setCount(slot int, c int64) {
	old := w.counts[slot]
	if old == c {
		return
	}
	w.counts[slot] = c
	w.countF.Set(slot, c*w.multOf(slot))
	if w.haltedSlot[slot] {
		w.haltedCount += c - old
	}
	w.bumpMass(slot, c-old)
	w.syncPairs(slot)
}

// bumpMass tracks the in-urn weighted mass sums behind the dynamic
// all-pairs total when a profile is installed.
func (w *World[S]) bumpMass(slot int, delta int64) {
	if !w.profiled {
		return
	}
	m := w.mult[slot]
	w.sumT += m * delta
	w.sumS2 += m * m * delta
}

// setCountOnly updates a slot's multiplicity and the halted tally,
// deferring both sampler syncs: the responsive-pair weights stay stale
// until the caller syncPairs every touched slot (so a slot passing
// through count zero mid-transition — a leader state relabeling, say —
// never pushes its possibly-huge pair weights through zero, which would
// thrash the alias sampler's mass-based rebuild policy), and the
// agent-count sampler update is queued on countDirty (the batched block
// never draws from countF; flushCounts settles it at block boundaries).
func (w *World[S]) setCountOnly(slot int, c int64) {
	old := w.counts[slot]
	if old == c {
		return
	}
	w.counts[slot] = c
	w.countDirty = append(w.countDirty, int32(slot))
	if w.haltedSlot[slot] {
		w.haltedCount += c - old
	}
	w.bumpMass(slot, c-old)
}

// flushCounts settles the deferred agent-count sampler updates. Flushing
// by final value is idempotent, so duplicate dirty entries are harmless.
func (w *World[S]) flushCounts() {
	for _, slot := range w.countDirty {
		w.countF.Set(int(slot), w.counts[slot]*w.multOf(int(slot)))
	}
	w.countDirty = w.countDirty[:0]
}

// syncPairs refreshes the weights of every responsive pair involving slot
// from the current counts.
func (w *World[S]) syncPairs(slot int) {
	for _, j := range w.live {
		if ps := w.pairSlot[slot][j]; ps >= 0 {
			w.pairF.Set(int(ps), w.pairWeight(slot, int(j)))
		}
	}
}

// addOne adds one agent in state s to the urn.
func (w *World[S]) addOne(s S) {
	slot, ok := w.lookup(s)
	if !ok {
		slot = w.allocSlot(s)
	}
	w.setCount(slot, w.counts[slot]+1)
}

// removeOne removes one agent in state s from the urn.
func (w *World[S]) removeOne(s S) {
	slot, ok := w.lookup(s)
	if !ok {
		panic("urn: removing an absent state")
	}
	c := w.counts[slot] - 1
	w.setCount(slot, c)
	if c == 0 {
		w.freeSlot(slot)
	}
}

// replaceSlot relabels a live zero-count slot with a new state in place:
// instead of retiring the slot and allocating a fresh one, the slot keeps
// its position in every table and only the responsiveness entries that
// actually changed are touched. The relabeling is measure-preserving —
// which agent-pair mass lives at which pair index never influences the
// sampled *states* — so the fast path is distribution-identical to
// freeSlot+allocSlot (see DESIGN.md). The reverse-order contract probe
// runs only when the forward probe claims unresponsiveness; a violation in
// the other direction is still caught when the pair is drawn.
func (w *World[S]) replaceSlot(slot int, s S) {
	w.mapRemove(w.states[slot])
	w.states[slot] = s
	w.mapInsert(s, slot)
	w.haltedSlot[slot] = w.proto.Halted(s)
	if w.mult != nil {
		// The relabeled slot hosts a newly appearing state class; its rate
		// changes only while the count is zero, so the running T/S2 sums
		// and the (stale) pair weights are unaffected until the caller
		// sets the new count.
		w.mult[slot] = w.nextMult()
	}
	for _, j := range w.live {
		_, _, eff := w.proto.Apply(s, w.states[j])
		if !eff && int(j) != slot {
			if _, _, rev := w.proto.Apply(w.states[j], s); rev != eff {
				panic("urn: Apply effectiveness depends on argument order; every scheduling policy of the compressed engine (see internal/sched) requires order-independent effectiveness")
			}
		}
		ps := w.pairSlot[slot][j]
		if eff && ps < 0 {
			w.addPair(slot, int(j))
		} else if !eff && ps >= 0 {
			w.removePair(slot, int(j), ps)
		}
		// eff && ps >= 0: the entry survives verbatim; the transition's
		// final syncPairs refreshes its weight.
	}
}

// addOneVia adds one agent in state s, knowing the interaction that
// produced it was drawn on slots (i, j): the common cases — the state of a
// drawn slot reappearing, or a brand-new state replacing a drained one —
// resolve with slot-index compares and an in-place relabel instead of map
// traffic and slot churn. It returns the slot the agent landed in; pair
// weights are left stale (see setCountOnly).
func (w *World[S]) addOneVia(s S, i, j int) int {
	if w.states[i] == s {
		w.setCountOnly(i, w.counts[i]+1)
		return i
	}
	if j != i && w.states[j] == s {
		w.setCountOnly(j, w.counts[j]+1)
		return j
	}
	if slot, ok := w.lookup(s); ok {
		w.setCountOnly(slot, w.counts[slot]+1)
		return slot
	}
	var slot int
	switch {
	case w.counts[i] == 0:
		slot = i
		w.replaceSlot(i, s)
	case j != i && w.counts[j] == 0:
		slot = j
		w.replaceSlot(j, s)
	default:
		slot = w.allocSlot(s)
	}
	w.setCountOnly(slot, 1)
	return slot
}

// applyTransition applies one effective interaction drawn on slots (i, j)
// — states a, b already read, protocol results na, nb — using the batched
// fast path: direct-slot decrements, slot-aware additions, deferred
// retirement of sources that stayed drained, and a single pair-weight
// sync per touched slot at the end (so intermediate zero counts never
// reach the pair sampler). It is the bookkeeping counterpart of
// removeOne/removeOne/addOne/addOne with an identical resulting multiset;
// only the slot labeling can differ.
func (w *World[S]) applyTransition(i, j int, na, nb S) {
	if i == j {
		w.setCountOnly(i, w.counts[i]-2)
	} else {
		w.setCountOnly(i, w.counts[i]-1)
		w.setCountOnly(j, w.counts[j]-1)
	}
	s1 := w.addOneVia(na, i, j)
	s2 := w.addOneVia(nb, i, j)
	if w.counts[i] == 0 {
		w.freeSlot(i)
	}
	if j != i && w.counts[j] == 0 {
		w.freeSlot(j)
	}
	// Refresh the responsive-pair weights of every slot the transition
	// touched, each exactly once (shared pairs resync to an unchanged
	// value, which the samplers treat as a no-op).
	if w.livePos[i] >= 0 {
		w.syncPairs(i)
	}
	if j != i && w.livePos[j] >= 0 {
		w.syncPairs(j)
	}
	if s1 != i && s1 != j {
		w.syncPairs(s1)
	}
	if s2 != i && s2 != j && s2 != s1 {
		w.syncPairs(s2)
	}
}

// Step performs one exact scheduler step — a uniform random unordered agent
// pair, like pop.World.Step — and reports whether it was effective. The
// first agent is drawn by count weight, the second uniformly among the
// remaining n-1, which realizes a uniform ordered pair; Run is the
// compressed path that skips the ineffective steps instead.
func (w *World[S]) Step() bool {
	w.flushCounts() // settle any deferred batched-block updates
	w.steps++
	i, ok := w.countF.Sample(w.rng)
	if !ok {
		panic("urn: empty population")
	}
	// Withdraw one agent of slot i (its full weight under a rate profile)
	// before drawing the partner.
	w.countF.Add(i, -w.multOf(i))
	j, ok := w.countF.Sample(w.rng)
	w.countF.Add(i, w.multOf(i))
	if !ok {
		panic("urn: population size 1")
	}
	a, b := w.states[i], w.states[j]
	na, nb, effective := w.proto.Apply(a, b)
	if !effective {
		return false
	}
	w.effective++
	w.removeOne(a)
	w.removeOne(b)
	w.addOne(na)
	w.addOne(nb)
	return true
}

// StepEffective is the compressed scheduler's unit of work: it advances
// the simulated clock past the next (geometrically distributed) run of
// ineffective selections and applies the following effective interaction.
// It returns false when the Options.MaxSteps budget is exhausted first —
// including a frozen configuration with no responsive pair at all, which
// the exact scheduler would churn through ineffectively until MaxSteps.
func (w *World[S]) StepEffective() bool {
	weight := w.pairF.Total()
	if weight <= 0 {
		w.steps = w.opts.MaxSteps
		return false
	}
	if p := float64(weight) / float64(w.allPairs()); p < 1 {
		// Failures before the first success of Bernoulli(p) are geometric:
		// floor(log(U)/log(1-p)) for U uniform on (0, 1].
		u := 1 - w.rng.Float64()
		skip := math.Floor(math.Log(u) / math.Log1p(-p))
		if rem := w.opts.MaxSteps - w.steps; skip >= float64(rem) {
			w.steps = w.opts.MaxSteps
			return false
		}
		w.steps += int64(skip)
	}
	w.steps++
	w.effective++
	ps, _ := w.pairF.Sample(w.rng)
	i, j := int(w.pairAB[ps][0]), int(w.pairAB[ps][1])
	a, b := w.states[i], w.states[j]
	if i != j && w.rng.Int63n(2) == 1 {
		a, b = b, a
	}
	na, nb, effective := w.proto.Apply(a, b)
	if !effective {
		panic("urn: Apply effectiveness depends on argument order; every scheduling policy of the compressed engine (see internal/sched) requires order-independent effectiveness")
	}
	w.removeOne(a)
	w.removeOne(b)
	w.addOne(na)
	w.addOne(nb)
	return true
}

// stopped reports whether a halting stop condition currently holds.
// Halted agents waiting in the crash/freeze pools still count; under
// churn "all" means all present agents.
func (w *World[S]) stopped() bool {
	h := w.haltedCount + w.poolHalted
	all := int64(w.n)
	if w.profiled {
		all = w.present
	}
	return (w.opts.StopWhenAnyHalted && h > 0) ||
		(w.opts.StopWhenAllHalted && all > 0 && h == all)
}

// stepBlock runs up to limit effective interactions on the batched fast
// path. Each draw is the same geometric-skip-then-weighted-pair law as
// StepEffective, conditioned on the exactly-maintained weights, but the
// transition bookkeeping goes through applyTransition and the geometric
// log denominator is cached while the responsive weight W is unchanged.
// It reports whether a stop condition fired and whether the step budget
// (or a frozen configuration) exhausted the run.
func (w *World[S]) stepBlock(limit int64) (halted, exhausted bool) {
	// Under a fault profile geometric skips must not jump over a pending
	// fault event: the block's step horizon is capped at the next firing
	// time. Stopping a skip at the horizon is exact — skip >= rem means
	// the first rem selections were all ineffective, and by memorylessness
	// the post-event remainder is geometric again, redrawn fresh.
	horizon := w.opts.MaxSteps
	eventCap := false
	if w.clock != nil {
		if next := w.clock.NextPending(); next < horizon {
			horizon, eventCap = next, true
		}
	}
	allPairs := w.allPairs()
	for t := int64(0); t < limit; t++ {
		weight := w.pairF.Total()
		if weight <= 0 || allPairs <= 0 {
			// Frozen configuration: nothing can interact until the next
			// fault event (or ever, without one).
			if w.steps < horizon {
				w.steps = horizon
			}
			return false, !eventCap
		}
		if weight < allPairs {
			if weight != w.skipW || allPairs != w.skipC {
				w.skipW, w.skipC = weight, allPairs
				w.skipDenom = math.Log1p(-float64(weight) / float64(allPairs))
			}
			u := 1 - w.rng.Float64()
			skip := math.Floor(math.Log(u) / w.skipDenom)
			if rem := horizon - w.steps; skip >= float64(rem) {
				if w.steps < horizon {
					w.steps = horizon
				}
				return false, !eventCap
			}
			w.steps += int64(skip)
		}
		w.steps++
		w.effective++
		ps, _ := w.pairF.Sample(w.rng)
		i, j := int(w.pairAB[ps][0]), int(w.pairAB[ps][1])
		a, b := w.states[i], w.states[j]
		if i != j && w.rng.Int63n(2) == 1 {
			a, b = b, a
			i, j = j, i
		}
		na, nb, effective := w.proto.Apply(a, b)
		if !effective {
			panic("urn: Apply effectiveness depends on argument order; every scheduling policy of the compressed engine (see internal/sched) requires order-independent effectiveness")
		}
		w.applyTransition(i, j, na, nb)
		if w.profiled {
			// Transitions move agents between rate classes, so the
			// all-pairs total is dynamic under a profile.
			allPairs = w.allPairs()
		}
		if w.stopped() {
			return true, false
		}
		if w.steps >= w.opts.MaxSteps {
			return false, false
		}
	}
	return false, false
}

// samplerRebuilds sums alias-table rebuilds across the two samplers
// (zero for Fenwick, which has no tables to rebuild).
func (w *World[S]) samplerRebuilds() int64 {
	var total int64
	if r, ok := w.countF.(interface{ Rebuilds() int64 }); ok {
		total += r.Rebuilds()
	}
	if r, ok := w.pairF.(interface{ Rebuilds() int64 }); ok {
		total += r.Rebuilds()
	}
	return total
}

// SetMetrics attaches a fleet-wide metrics sink. Call it after any
// snapshot restore: current totals become the published baseline, so a
// resumed run only publishes steps it simulated itself. Publishing
// happens on the CheckEvery cadence and at run exit; the sampling hot
// path and block loop are untouched.
func (w *World[S]) SetMetrics(m *obs.EngineMetrics) {
	w.metrics = m
	w.pubSteps, w.pubEffective = w.steps, w.effective
	w.pubFault, w.pubFlush = w.faultEvents, w.blockFlushes
	w.pubRebuilds = w.samplerRebuilds()
	if m != nil {
		m.Runs.Inc()
	}
}

// publishMetrics flushes counter deltas accumulated since the last
// publish. Deltas, not absolute stores: concurrent runs on one daemon
// share the per-engine counters.
func (w *World[S]) publishMetrics() {
	if w.metrics == nil {
		return
	}
	stepsD, effD := w.steps-w.pubSteps, w.effective-w.pubEffective
	w.metrics.Steps.Add(stepsD)
	w.metrics.Effective.Add(effD)
	w.metrics.Skipped.Add(stepsD - effD)
	w.metrics.FaultEvents.Add(w.faultEvents - w.pubFault)
	w.metrics.BlockFlushes.Add(w.blockFlushes - w.pubFlush)
	rb := w.samplerRebuilds()
	w.metrics.AliasRebuilds.Add(rb - w.pubRebuilds)
	w.pubSteps, w.pubEffective = w.steps, w.effective
	w.pubFault, w.pubFlush = w.faultEvents, w.blockFlushes
	w.pubRebuilds = rb
}

// Run executes the compressed scheduler until a stop condition fires. Stop
// conditions already true at entry return immediately without stepping.
// Skipped steps are all ineffective and cannot change any agent's halting
// status, so checking stop conditions only after effective interactions is
// exact. It is RunContext under a background context.
func (w *World[S]) Run() Result {
	return w.RunContext(context.Background())
}

// RunContext is Run under a cancelable context. Cancellation is observed
// every Options.CheckEvery *effective* interactions — skipped ineffective
// runs cost no work, so the exact scheduler's step-count cadence would be
// meaningless here — and stops the run with pop.ReasonCanceled. The
// Progress callback fires on the same cadence with the simulated step
// count. With Options.BatchSize > 1 (the default) effective interactions
// run in blocks aligned to the CheckEvery cadence, so the observable
// check/progress points are unchanged; BatchSize = 1 forces the
// per-interaction reference loop.
func (w *World[S]) RunContext(ctx context.Context) Result {
	if ctx.Err() != nil {
		return w.result(pop.ReasonCanceled)
	}
	if w.stopped() {
		return w.result(pop.ReasonHalted)
	}
	if w.batch <= 1 {
		return w.runReference(ctx)
	}
	for w.steps < w.opts.MaxSteps {
		if w.clock != nil {
			w.applyFaults()
			if w.stopped() {
				// A fault can halt the run by itself — e.g. the departure
				// of the last non-halted agent.
				return w.result(pop.ReasonHalted)
			}
		}
		limit := w.opts.CheckEvery - w.effective%w.opts.CheckEvery
		if b := int64(w.batch); limit > b {
			limit = b
		}
		halted, exhausted := w.stepBlock(limit)
		w.flushCounts()
		w.blockFlushes++
		if halted {
			return w.result(pop.ReasonHalted)
		}
		if exhausted {
			break
		}
		if w.effective%w.opts.CheckEvery == 0 {
			if ctx.Err() != nil {
				return w.result(pop.ReasonCanceled)
			}
			w.publishMetrics()
			if w.opts.Progress != nil {
				w.opts.Progress(w.steps)
			}
		}
	}
	return w.result(pop.ReasonMaxSteps)
}

// applyFaults drains every fault event due at the current simulated step.
// It runs at block boundaries (and after event-capped skips), so events
// apply on the block cadence in their exact order; each lane reschedules
// from its own firing time, keeping the timeline Poisson-faithful however
// far a block jumped.
func (w *World[S]) applyFaults() {
	for {
		ev, ok := w.clock.NextDue(w.steps)
		if !ok {
			return
		}
		w.faultEvents++
		switch ev {
		case sched.EvCrash:
			w.poolOne(&w.crashed)
		case sched.EvRecover:
			w.unpoolOne(&w.crashed)
		case sched.EvFreeze:
			w.poolOne(&w.frozen)
		case sched.EvThaw:
			w.unpoolOne(&w.frozen)
		case sched.EvArrive:
			w.addOne(w.proto.InitialState(int(w.idSeq), w.n))
			w.idSeq++
			w.present++
			w.inUrn++
		case sched.EvDepart:
			w.departOne()
		}
	}
}

// urnVictim draws a uniformly random in-urn agent with the fault RNG,
// returning its slot. The walk over live slots is O(m); fault events are
// rare on the simulated-step scale, so this never shows up next to the
// sampling hot path.
func (w *World[S]) urnVictim() (int, bool) {
	if w.inUrn <= 0 {
		return 0, false
	}
	r := w.clock.RNG().Int63n(w.inUrn)
	for _, slot := range w.live {
		if r < w.counts[slot] {
			return int(slot), true
		}
		r -= w.counts[slot]
	}
	panic("urn: victim walk out of sync with counts")
}

// poolOne moves one uniformly random in-urn agent into a fault pool
// (crash or freeze): pooled agents cannot be paired, which is exactly
// what removing their mass from the urn expresses.
func (w *World[S]) poolOne(pool *[]S) {
	slot, ok := w.urnVictim()
	if !ok {
		return
	}
	s := w.states[slot]
	w.removeOne(s)
	w.inUrn--
	if w.proto.Halted(s) {
		w.poolHalted++
	}
	*pool = append(*pool, s)
}

// unpoolOne returns one uniformly random pooled agent to the urn
// (recovery or thaw).
func (w *World[S]) unpoolOne(pool *[]S) {
	k := len(*pool)
	if k == 0 {
		return
	}
	idx := w.clock.RNG().Intn(k)
	s := (*pool)[idx]
	(*pool)[idx] = (*pool)[k-1]
	*pool = (*pool)[:k-1]
	if w.proto.Halted(s) {
		w.poolHalted--
	}
	w.addOne(s)
	w.inUrn++
}

// departOne removes one uniformly random present agent for good —
// in-urn agents and pooled (crashed/frozen) ones are equally likely.
func (w *World[S]) departOne() {
	if w.present <= 0 {
		return
	}
	r := w.clock.RNG().Int63n(w.present)
	switch {
	case r < w.inUrn:
		slot, ok := w.urnVictim()
		if !ok {
			return
		}
		w.removeOne(w.states[slot])
		w.inUrn--
	case r < w.inUrn+int64(len(w.crashed)):
		idx := w.clock.RNG().Intn(len(w.crashed))
		s := w.crashed[idx]
		w.crashed[idx] = w.crashed[len(w.crashed)-1]
		w.crashed = w.crashed[:len(w.crashed)-1]
		if w.proto.Halted(s) {
			w.poolHalted--
		}
	default:
		idx := w.clock.RNG().Intn(len(w.frozen))
		s := w.frozen[idx]
		w.frozen[idx] = w.frozen[len(w.frozen)-1]
		w.frozen = w.frozen[:len(w.frozen)-1]
		if w.proto.Halted(s) {
			w.poolHalted--
		}
	}
	w.present--
}

// runReference is the per-interaction compressed loop kept as the
// reference implementation of the batched path.
func (w *World[S]) runReference(ctx context.Context) Result {
	for w.steps < w.opts.MaxSteps {
		if !w.StepEffective() {
			break
		}
		if w.stopped() {
			return w.result(pop.ReasonHalted)
		}
		if w.effective%w.opts.CheckEvery == 0 {
			if ctx.Err() != nil {
				return w.result(pop.ReasonCanceled)
			}
			w.publishMetrics()
			if w.opts.Progress != nil {
				w.opts.Progress(w.steps)
			}
		}
	}
	return w.result(pop.ReasonMaxSteps)
}

func (w *World[S]) result(reason pop.StopReason) Result {
	w.publishMetrics()
	return Result{
		Steps:     w.steps,
		Effective: w.effective,
		Skipped:   w.steps - w.effective,
		Reason:    reason,
	}
}
