package urn

import (
	"testing"

	"shapesol/internal/pop"
	"shapesol/internal/sched"
)

// checkSchedInvariants asserts the profiled world's derived mass totals
// and census agree with its slot tables — the bookkeeping every weighted
// draw and every skip denominator depends on.
func checkSchedInvariants(t *testing.T, w *World[int]) {
	t.Helper()
	w.flushCounts()
	var sumT, sumS2, inUrn int64
	for _, slot := range w.live {
		c, m := w.counts[slot], w.multOf(int(slot))
		inUrn += c
		sumT += m * c
		sumS2 += m * m * c
		if got := w.countF.Weight(int(slot)); got != c*m {
			t.Fatalf("slot %d count weight %d, want %d·%d", slot, got, c, m)
		}
	}
	if w.sumT != sumT || w.sumS2 != sumS2 {
		t.Fatalf("mass totals T=%d S2=%d, tables imply %d, %d", w.sumT, w.sumS2, sumT, sumS2)
	}
	if w.inUrn != inUrn {
		t.Fatalf("inUrn census %d, counts sum to %d", w.inUrn, inUrn)
	}
	if want := w.inUrn + int64(len(w.crashed)) + int64(len(w.frozen)); w.present != want {
		t.Fatalf("present %d, urn+pools hold %d", w.present, want)
	}
}

// TestUrnUniformStreamStability pins the exact Result of a fixed seed on
// all three sampling paths: the scheduler refactor must not move the
// default draw by a single RNG call, with or without a zero profile. The
// constants were recorded from the pre-refactor engine.
func TestUrnUniformStreamStability(t *testing.T) {
	want := Result{Steps: 148, Effective: 1, Skipped: 147, Reason: pop.ReasonHalted}
	for _, tc := range []struct {
		name string
		opts pop.Options
	}{
		{"batched-alias", pop.Options{Seed: 0xC0FFEE, StopWhenAnyHalted: true}},
		{"reference", pop.Options{Seed: 0xC0FFEE, StopWhenAnyHalted: true, BatchSize: 1}},
		{"fenwick", pop.Options{Seed: 0xC0FFEE, StopWhenAnyHalted: true, Sampler: pop.SamplerFenwick}},
	} {
		for _, apply := range []bool{false, true} {
			w := New(64, haltOnMeet{}, tc.opts)
			if apply {
				if err := w.ApplyProfile(sched.Profile{}); err != nil {
					t.Fatal(err)
				}
				if w.profiled {
					t.Fatal("zero profile installed a scheduler layer")
				}
			}
			if got := w.Run(); got != want {
				t.Fatalf("%s (profile=%v) drifted: %+v, want %+v", tc.name, apply, got, want)
			}
		}
	}
}

func TestUrnApplyProfileRestrictions(t *testing.T) {
	if err := New(8, colorProto{ones: 4}, pop.Options{Seed: 1}).
		ApplyProfile(sched.Profile{Scheduler: sched.KindClustered}); err == nil {
		t.Fatal("clustered accepted by the compressed engine")
	}
	if err := New(8, colorProto{ones: 4}, pop.Options{Seed: 1}).
		ApplyProfile(sched.Profile{Scheduler: sched.KindAdversarialDelay}); err == nil {
		t.Fatal("adversarial-delay accepted by the compressed engine")
	}
	if err := New(8, colorProto{ones: 4}, pop.Options{Seed: 1, BatchSize: 1}).
		ApplyProfile(sched.Profile{CrashEvery: 10}); err == nil {
		t.Fatal("fault injection accepted on the unbatched reference path")
	}
	w := New(8, colorProto{ones: 4}, pop.Options{Seed: 1})
	if err := w.ApplyProfile(sched.Profile{Scheduler: sched.KindWeighted, Rates: []int64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := w.ApplyProfile(sched.Profile{Scheduler: sched.KindWeighted, Rates: []int64{1, 2}}); err == nil {
		t.Fatal("second profile accepted")
	}
	stepped := New(8, colorProto{ones: 4}, pop.Options{Seed: 1})
	stepped.Step()
	if err := stepped.ApplyProfile(sched.Profile{CrashEvery: 10}); err == nil {
		t.Fatal("profile accepted after stepping")
	}
}

// TestUrnWeightedTotals checks the weighted mass algebra against hand
// computation: colorProto{ones: 5} on n=10 puts state 1 first in
// appearance order (rate 3) and state 0 second (rate 1), so the cross
// pair weighs 5·5·3·1 = 75 and all pairs (T²−S2)/2 = (20²−50)/2 = 175.
func TestUrnWeightedTotals(t *testing.T) {
	w := New(10, colorProto{ones: 5}, pop.Options{Seed: 2})
	if err := w.ApplyProfile(sched.Profile{Scheduler: sched.KindWeighted, Rates: []int64{3, 1}}); err != nil {
		t.Fatal(err)
	}
	if got := w.ResponsiveWeight(); got != 75 {
		t.Fatalf("responsive weight %d, want 75", got)
	}
	if got := w.allPairs(); got != 175 {
		t.Fatalf("all pairs %d, want 175", got)
	}
	checkSchedInvariants(t, w)
	for i := 0; i < 500; i++ {
		if !w.StepEffective() {
			t.Fatal("budget exhausted")
		}
	}
	checkSchedInvariants(t, w)
}

// TestUrnWeightedInvariantsUnderSlotChurn runs the weighted layer over
// tokenProto, whose token state allocates and frees a slot on every
// effective interaction: recycled slots must re-enter the rate-class
// assignment without corrupting the mass totals.
func TestUrnWeightedInvariantsUnderSlotChurn(t *testing.T) {
	w := New(200, tokenProto{k: 6, cycle: 40}, pop.Options{Seed: 3, MaxSteps: 200_000})
	if err := w.ApplyProfile(sched.Profile{Scheduler: sched.KindWeighted, Rates: []int64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	res := w.Run()
	if res.Reason != pop.ReasonMaxSteps {
		t.Fatalf("%+v", res)
	}
	checkSchedInvariants(t, w)
	if w.Present() != 200 {
		t.Fatalf("present %d, want 200 without faults", w.Present())
	}
}

// TestUrnFaultConservation runs every fault lane at once and checks the
// population ledger balances afterwards: present = urn + pools, arrivals
// and departures bounded by the churn budget.
func TestUrnFaultConservation(t *testing.T) {
	w := New(40, colorProto{ones: 20}, pop.Options{Seed: 5, MaxSteps: 100_000, CheckEvery: 16})
	if err := w.ApplyProfile(sched.Profile{
		CrashEvery: 200, RecoverEvery: 400,
		FreezeEvery: 300, ThawEvery: 500,
		ArriveEvery: 250, DepartEvery: 350, MaxChurn: 10,
	}); err != nil {
		t.Fatal(err)
	}
	res := w.Run()
	if res.Reason != pop.ReasonMaxSteps {
		t.Fatalf("%+v", res)
	}
	checkSchedInvariants(t, w)
	if w.Present() < 40-10 || w.Present() > 40+10 {
		t.Fatalf("present %d outside churn budget around 40", w.Present())
	}
	if w.N() != 40 {
		t.Fatalf("founding N changed to %d", w.N())
	}
	if got := w.CountWhere(func(int) bool { return true }); got != w.inUrn {
		t.Fatalf("CountWhere sees %d agents, urn holds %d", got, w.inUrn)
	}
}

// TestUrnCrashStarvesResponsiveWeight crashes agents until no responsive
// pair can remain; the run must fast-forward between fault events to its
// budget instead of spinning or halting.
func TestUrnCrashStarvesResponsiveWeight(t *testing.T) {
	w := New(4, colorProto{ones: 2}, pop.Options{Seed: 6, MaxSteps: 50_000, CheckEvery: 4})
	if err := w.ApplyProfile(sched.Profile{CrashEvery: 1, MaxCrashes: 3}); err != nil {
		t.Fatal(err)
	}
	res := w.Run()
	if res.Reason != pop.ReasonMaxSteps || res.Steps != 50_000 {
		t.Fatalf("%+v, want max-steps at 50000", res)
	}
	if w.inUrn != 1 || len(w.crashed) != 3 {
		t.Fatalf("urn %d / crashed %d, want 1 / 3", w.inUrn, len(w.crashed))
	}
	if w.Present() != 4 {
		t.Fatalf("present %d, want 4 (crash-stop keeps agents present)", w.Present())
	}
}

// TestUrnFaultedSnapshotResumeIdentity captures a memento from inside a
// faulted weighted run (via the Progress callback, the production capture
// point) and checks a restored world finishes byte-identically: result,
// per-state counts, census and fault pools.
func TestUrnFaultedSnapshotResumeIdentity(t *testing.T) {
	profile := sched.Profile{
		Scheduler: sched.KindWeighted, Rates: []int64{1, 4, 2},
		CrashEvery: 600, RecoverEvery: 900,
		ArriveEvery: 700, DepartEvery: 800, MaxChurn: 15,
	}
	opts := pop.Options{Seed: 9, MaxSteps: 300_000, CheckEvery: 64}
	build := func() *World[int] {
		w := New(150, tokenProto{k: 6, cycle: 40}, opts)
		if err := w.ApplyProfile(profile); err != nil {
			t.Fatal(err)
		}
		return w
	}

	var m *Memento[int]
	base := build()
	calls := 0
	base.opts.Progress = func(int64) {
		calls++
		if calls == 5 {
			m = base.Memento()
		}
	}
	baseRes := base.Run()
	if m == nil {
		t.Fatal("run too short to capture a mid-flight memento")
	}
	if m.Sched == nil || !m.Sched.HasClock {
		t.Fatal("faulted memento dropped scheduler state")
	}

	resumed := build()
	if err := resumed.RestoreMemento(m); err != nil {
		t.Fatal(err)
	}
	checkSchedInvariants(t, resumed)
	if got := resumed.Run(); got != baseRes {
		t.Fatalf("results diverged:\nbase    %+v\nresumed %+v", baseRes, got)
	}
	if resumed.Present() != base.Present() {
		t.Fatalf("present %d, want %d", resumed.Present(), base.Present())
	}
	if len(resumed.crashed) != len(base.crashed) || len(resumed.frozen) != len(base.frozen) {
		t.Fatalf("pools %d/%d, want %d/%d",
			len(resumed.crashed), len(resumed.frozen), len(base.crashed), len(base.frozen))
	}
	base.ForEach(func(s int, count int64) {
		if got := resumed.Count(s); got != count {
			t.Fatalf("state %d count %d, want %d", s, got, count)
		}
	})
	checkSchedInvariants(t, base)
	checkSchedInvariants(t, resumed)
}

func TestUrnRestoreRejectsProfileMismatch(t *testing.T) {
	faulted := New(20, colorProto{ones: 10}, pop.Options{Seed: 1})
	if err := faulted.ApplyProfile(sched.Profile{CrashEvery: 50}); err != nil {
		t.Fatal(err)
	}
	m := faulted.Memento()

	bare := New(20, colorProto{ones: 10}, pop.Options{Seed: 1})
	if err := bare.RestoreMemento(m); err == nil {
		t.Fatal("faulted memento restored into profile-less world")
	}
	if err := faulted.RestoreMemento(bare.Memento()); err == nil {
		t.Fatal("profile-less memento restored into faulted world")
	}

	weighted := New(20, colorProto{ones: 10}, pop.Options{Seed: 1})
	if err := weighted.ApplyProfile(sched.Profile{Scheduler: sched.KindWeighted, Rates: []int64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := weighted.RestoreMemento(m); err == nil {
		t.Fatal("clocked memento restored into clock-less weighted world")
	}
}
