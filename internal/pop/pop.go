// Package pop implements the classical population-protocol setting used by
// Section 5 of the paper: n agents on a complete interaction graph, no
// geometry, no bonds. In every step a uniform random scheduler selects one
// of the n(n-1)/2 unordered agent pairs; the pair interacts and updates its
// states.
//
// The counting protocols of Section 5 are built on this engine
// (internal/counting); the geometric engine of internal/sim is used once
// counting moves onto a self-assembled line (Section 6.1).
package pop

import (
	"fmt"
	"math/rand"
)

// Protocol is the agent behavior. Apply receives the two states in random
// order (pairs are unordered) and returns the updated states plus an
// effectiveness flag.
type Protocol interface {
	InitialState(id, n int) any
	Apply(a, b any) (na, nb any, effective bool)
	Halted(s any) bool
}

// Options configures a run.
type Options struct {
	Seed int64
	// MaxSteps bounds Run; default 100 million.
	MaxSteps int64
	// StopWhenAnyHalted stops Run at the first halting agent.
	StopWhenAnyHalted bool
	// StopWhenAllHalted stops Run when every agent halted.
	StopWhenAllHalted bool
}

func (o Options) withDefaults() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 100_000_000
	}
	return o
}

// StopReason explains why Run returned.
type StopReason int

// Stop reasons.
const (
	ReasonMaxSteps StopReason = iota + 1
	ReasonHalted
)

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case ReasonMaxSteps:
		return "max-steps"
	case ReasonHalted:
		return "halted"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// Result summarizes a run.
type Result struct {
	Steps       int64
	Effective   int64
	Reason      StopReason
	FirstHalted int // id of the first agent to halt, or -1
}

// World is one population instance. Not safe for concurrent use.
type World struct {
	n      int
	opts   Options
	proto  Protocol
	rng    *rand.Rand
	states []any
	halted []bool

	steps, effective int64
	haltedCount      int
	firstHalted      int
}

// New builds a population of n agents in their initial states. n must be at
// least 2.
func New(n int, proto Protocol, opts Options) *World {
	if n < 2 {
		panic(fmt.Sprintf("pop: population size %d < 2", n))
	}
	w := &World{
		n:           n,
		opts:        opts.withDefaults(),
		proto:       proto,
		rng:         rand.New(rand.NewSource(opts.Seed)),
		states:      make([]any, n),
		halted:      make([]bool, n),
		firstHalted: -1,
	}
	for i := 0; i < n; i++ {
		w.states[i] = proto.InitialState(i, n)
		if proto.Halted(w.states[i]) {
			w.halted[i] = true
			w.haltedCount++
			if w.firstHalted < 0 {
				w.firstHalted = i
			}
		}
	}
	return w
}

// N returns the population size.
func (w *World) N() int { return w.n }

// Steps returns the number of scheduler selections so far.
func (w *World) Steps() int64 { return w.steps }

// Effective returns the number of effective interactions so far.
func (w *World) Effective() int64 { return w.effective }

// State returns agent id's current state.
func (w *World) State(id int) any { return w.states[id] }

// HaltedCount returns the number of halted agents.
func (w *World) HaltedCount() int { return w.haltedCount }

// FirstHalted returns the id of the first agent that halted, or -1.
func (w *World) FirstHalted() int { return w.firstHalted }

// FindNode returns the smallest agent id whose state satisfies pred, or -1.
func (w *World) FindNode(pred func(any) bool) int {
	for i, s := range w.states {
		if pred(s) {
			return i
		}
	}
	return -1
}

// CountNodes returns how many agent states satisfy pred.
func (w *World) CountNodes(pred func(any) bool) int {
	n := 0
	for _, s := range w.states {
		if pred(s) {
			n++
		}
	}
	return n
}

// Step performs one uniform random pairwise interaction and reports whether
// it was effective.
func (w *World) Step() bool {
	w.steps++
	i := w.rng.Intn(w.n)
	j := w.rng.Intn(w.n - 1)
	if j >= i {
		j++
	}
	na, nb, effective := w.proto.Apply(w.states[i], w.states[j])
	if !effective {
		return false
	}
	w.effective++
	w.apply(i, na)
	w.apply(j, nb)
	return true
}

func (w *World) apply(id int, s any) {
	w.states[id] = s
	h := w.proto.Halted(s)
	if h && !w.halted[id] {
		w.halted[id] = true
		w.haltedCount++
		if w.firstHalted < 0 {
			w.firstHalted = id
		}
	} else if !h && w.halted[id] {
		w.halted[id] = false
		w.haltedCount--
	}
}

// Run executes steps until a stop condition fires.
func (w *World) Run() Result {
	reason := ReasonMaxSteps
	for w.steps < w.opts.MaxSteps {
		w.Step()
		if w.opts.StopWhenAnyHalted && w.haltedCount > 0 {
			reason = ReasonHalted
			break
		}
		if w.opts.StopWhenAllHalted && w.haltedCount == w.n {
			reason = ReasonHalted
			break
		}
	}
	return Result{
		Steps:       w.steps,
		Effective:   w.effective,
		Reason:      reason,
		FirstHalted: w.firstHalted,
	}
}
