// Package pop implements the classical population-protocol setting used by
// Section 5 of the paper: n agents on a complete interaction graph, no
// geometry, no bonds. In every step a uniform random scheduler selects one
// of the n(n-1)/2 unordered agent pairs; the pair interacts and updates its
// states.
//
// The engine is generic over the protocol's state type S, so agent states
// are stored unboxed in a []S and the steady-state Step performs no heap
// allocations (protocols with value-type states keep the whole hot loop
// allocation-free; see TestStepZeroAllocs).
//
// The counting protocols of Section 5 are built on this engine
// (internal/counting); the geometric engine of internal/sim is used once
// counting moves onto a self-assembled line (Section 6.1).
package pop

import (
	"context"
	"fmt"

	"shapesol/internal/wrand"
)

// Protocol is the agent behavior, generic over the per-agent state type S.
// Apply receives the two states in random order (pairs are unordered) and
// returns the updated states plus an effectiveness flag.
type Protocol[S any] interface {
	InitialState(id, n int) S
	Apply(a, b S) (na, nb S, effective bool)
	Halted(s S) bool
}

// Options configures a run.
type Options struct {
	Seed int64
	// MaxSteps bounds Run; default 100 million.
	MaxSteps int64
	// StopWhenAnyHalted stops Run at the first halting agent.
	StopWhenAnyHalted bool
	// StopWhenAllHalted stops Run when every agent halted.
	StopWhenAllHalted bool
	// CheckEvery is the cadence (in scheduler steps) of the RunContext
	// cancellation check and the Progress callback. The urn engine applies
	// the same cadence to effective interactions instead, since its skipped
	// steps cost no work. Defaults to 256.
	CheckEvery int64
	// Progress, when non-nil, is invoked by Run every CheckEvery steps with
	// the current (simulated) step count. It must not mutate the world.
	Progress func(steps int64)
	// Sampler selects the weighted-sampling structure behind the urn
	// engine's responsive-pair and agent-count draws. The default is the
	// alias sampler (O(1) draws, amortized-O(1) updates); SamplerFenwick
	// forces the O(log m) Fenwick tree kept as the reference
	// implementation. The exact pop engine draws agent pairs uniformly and
	// ignores this knob.
	Sampler SamplerKind
	// BatchSize is the urn engine's effective-interaction block size:
	// transitions are executed in blocks of up to BatchSize draws with
	// deferred stop/cancellation/progress handling at block boundaries
	// (clamped to the CheckEvery cadence). 0 selects the default (256);
	// 1 forces the per-interaction reference loop. The exact pop engine
	// ignores this knob.
	BatchSize int
}

// SamplerKind names a weighted-sampler implementation for the urn engine.
type SamplerKind string

// Sampler kinds.
const (
	// SamplerDefault lets the engine choose (currently SamplerAlias).
	SamplerDefault SamplerKind = ""
	// SamplerFenwick is the O(log m) Fenwick-tree reference sampler.
	SamplerFenwick SamplerKind = "fenwick"
	// SamplerAlias is the O(1) alias/rejection sampler.
	SamplerAlias SamplerKind = "alias"
)

func (o Options) withDefaults() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 100_000_000
	}
	if o.CheckEvery == 0 {
		o.CheckEvery = 256
	}
	return o
}

// StopReason explains why Run returned.
type StopReason int

// Stop reasons.
const (
	ReasonMaxSteps StopReason = iota + 1
	ReasonHalted
	ReasonCanceled
)

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case ReasonMaxSteps:
		return "max-steps"
	case ReasonHalted:
		return "halted"
	case ReasonCanceled:
		return "canceled"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// Result summarizes a run.
type Result struct {
	Steps       int64
	Effective   int64
	Reason      StopReason
	FirstHalted int // id of the first agent to halt, or -1
}

// World is one population instance. Not safe for concurrent use; run
// independent worlds in parallel instead (see internal/runner).
type World[S any] struct {
	n      int
	opts   Options
	proto  Protocol[S]
	rng    *wrand.RNG
	states []S
	halted []bool

	steps, effective int64
	haltedCount      int
	firstHalted      int
}

// New builds a population of n agents in their initial states. n must be at
// least 2.
func New[S any](n int, proto Protocol[S], opts Options) *World[S] {
	if n < 2 {
		panic(fmt.Sprintf("pop: population size %d < 2", n))
	}
	w := &World[S]{
		n:           n,
		opts:        opts.withDefaults(),
		proto:       proto,
		rng:         wrand.NewRNG(opts.Seed),
		states:      make([]S, n),
		halted:      make([]bool, n),
		firstHalted: -1,
	}
	for i := 0; i < n; i++ {
		w.states[i] = proto.InitialState(i, n)
		if proto.Halted(w.states[i]) {
			w.halted[i] = true
			w.haltedCount++
			if w.firstHalted < 0 {
				w.firstHalted = i
			}
		}
	}
	return w
}

// N returns the population size.
func (w *World[S]) N() int { return w.n }

// Steps returns the number of scheduler selections so far.
func (w *World[S]) Steps() int64 { return w.steps }

// Effective returns the number of effective interactions so far.
func (w *World[S]) Effective() int64 { return w.effective }

// State returns agent id's current state.
func (w *World[S]) State(id int) S { return w.states[id] }

// HaltedCount returns the number of halted agents.
func (w *World[S]) HaltedCount() int { return w.haltedCount }

// FirstHalted returns the id of the first agent that halted, or -1.
func (w *World[S]) FirstHalted() int { return w.firstHalted }

// FindNode returns the smallest agent id whose state satisfies pred, or -1.
func (w *World[S]) FindNode(pred func(S) bool) int {
	for i := range w.states {
		if pred(w.states[i]) {
			return i
		}
	}
	return -1
}

// CountNodes returns how many agent states satisfy pred.
func (w *World[S]) CountNodes(pred func(S) bool) int {
	n := 0
	for i := range w.states {
		if pred(w.states[i]) {
			n++
		}
	}
	return n
}

// Step performs one uniform random pairwise interaction and reports whether
// it was effective.
func (w *World[S]) Step() bool {
	w.steps++
	i := w.rng.Intn(w.n)
	j := w.rng.Intn(w.n - 1)
	if j >= i {
		j++
	}
	na, nb, effective := w.proto.Apply(w.states[i], w.states[j])
	if !effective {
		return false
	}
	w.effective++
	w.apply(i, na)
	w.apply(j, nb)
	return true
}

func (w *World[S]) apply(id int, s S) {
	w.states[id] = s
	h := w.proto.Halted(s)
	if h && !w.halted[id] {
		w.halted[id] = true
		w.haltedCount++
		if w.firstHalted < 0 {
			w.firstHalted = id
		}
	} else if !h && w.halted[id] {
		w.halted[id] = false
		w.haltedCount--
	}
}

// stopped reports whether a halting stop condition currently holds.
func (w *World[S]) stopped() bool {
	return (w.opts.StopWhenAnyHalted && w.haltedCount > 0) ||
		(w.opts.StopWhenAllHalted && w.haltedCount == w.n)
}

// Run executes steps until a stop condition fires. Stop conditions already
// true at entry (for example a protocol whose initial configuration
// contains a halted agent) return immediately without stepping. It is
// RunContext under a background context.
func (w *World[S]) Run() Result {
	return w.RunContext(context.Background())
}

// RunContext is Run under a cancelable context: cancellation (or deadline
// expiry) is observed every Options.CheckEvery steps and stops the run
// with ReasonCanceled. The per-step hot path is untouched and stays
// allocation-free.
func (w *World[S]) RunContext(ctx context.Context) Result {
	reason := ReasonMaxSteps
	switch {
	case ctx.Err() != nil:
		reason = ReasonCanceled
		return Result{Steps: w.steps, Effective: w.effective,
			Reason: reason, FirstHalted: w.firstHalted}
	case w.stopped():
		reason = ReasonHalted
		return Result{Steps: w.steps, Effective: w.effective,
			Reason: reason, FirstHalted: w.firstHalted}
	}
	nextCheck := w.steps + w.opts.CheckEvery
	for w.steps < w.opts.MaxSteps {
		w.Step()
		if w.stopped() {
			reason = ReasonHalted
			break
		}
		if w.steps >= nextCheck {
			nextCheck = w.steps + w.opts.CheckEvery
			if ctx.Err() != nil {
				reason = ReasonCanceled
				break
			}
			if w.opts.Progress != nil {
				w.opts.Progress(w.steps)
			}
		}
	}
	return Result{
		Steps:       w.steps,
		Effective:   w.effective,
		Reason:      reason,
		FirstHalted: w.firstHalted,
	}
}
