// Package pop implements the classical population-protocol setting used by
// Section 5 of the paper: n agents on a complete interaction graph, no
// geometry, no bonds. In every step a scheduler selects an agent pair; the
// pair interacts and updates its states.
//
// Pair selection is pluggable (internal/sched): by default — and always,
// when no scheduler/fault profile is applied — the engine draws one of
// the n(n-1)/2 unordered pairs uniformly at random, reproducing the
// historical RNG stream byte for byte. ApplyProfile installs an
// alternative policy (weighted, clustered, adversarial-delay) and/or a
// fault model (crashes, freezes, population churn); this engine keeps
// per-agent identity, so it is the reference implementation of every
// policy and fault kind.
//
// The engine is generic over the protocol's state type S, so agent states
// are stored unboxed in a []S and the steady-state Step performs no heap
// allocations (protocols with value-type states keep the whole hot loop
// allocation-free; see TestStepZeroAllocs).
//
// The counting protocols of Section 5 are built on this engine
// (internal/counting); the geometric engine of internal/sim is used once
// counting moves onto a self-assembled line (Section 6.1).
package pop

import (
	"context"
	"fmt"

	"shapesol/internal/obs"
	"shapesol/internal/sched"
	"shapesol/internal/wrand"
)

// Protocol is the agent behavior, generic over the per-agent state type S.
// Apply receives the two states in random order (pairs are unordered) and
// returns the updated states plus an effectiveness flag.
type Protocol[S any] interface {
	InitialState(id, n int) S
	Apply(a, b S) (na, nb S, effective bool)
	Halted(s S) bool
}

// Options configures a run.
type Options struct {
	Seed int64
	// MaxSteps bounds Run; default 100 million.
	MaxSteps int64
	// StopWhenAnyHalted stops Run at the first halting agent.
	StopWhenAnyHalted bool
	// StopWhenAllHalted stops Run when every agent halted.
	StopWhenAllHalted bool
	// CheckEvery is the cadence (in scheduler steps) of the RunContext
	// cancellation check and the Progress callback. The urn engine applies
	// the same cadence to effective interactions instead, since its skipped
	// steps cost no work. Defaults to 256.
	CheckEvery int64
	// Progress, when non-nil, is invoked by Run every CheckEvery steps with
	// the current (simulated) step count. It must not mutate the world.
	Progress func(steps int64)
	// Sampler selects the weighted-sampling structure behind the urn
	// engine's responsive-pair and agent-count draws. The default is the
	// alias sampler (O(1) draws, amortized-O(1) updates); SamplerFenwick
	// forces the O(log m) Fenwick tree kept as the reference
	// implementation. The exact pop engine draws agent pairs uniformly and
	// ignores this knob.
	Sampler SamplerKind
	// BatchSize is the urn engine's effective-interaction block size:
	// transitions are executed in blocks of up to BatchSize draws with
	// deferred stop/cancellation/progress handling at block boundaries
	// (clamped to the CheckEvery cadence). 0 selects the default (256);
	// 1 forces the per-interaction reference loop. The exact pop engine
	// ignores this knob.
	BatchSize int
}

// SamplerKind names a weighted-sampler implementation for the urn engine.
type SamplerKind string

// Sampler kinds.
const (
	// SamplerDefault lets the engine choose (currently SamplerAlias).
	SamplerDefault SamplerKind = ""
	// SamplerFenwick is the O(log m) Fenwick-tree reference sampler.
	SamplerFenwick SamplerKind = "fenwick"
	// SamplerAlias is the O(1) alias/rejection sampler.
	SamplerAlias SamplerKind = "alias"
)

func (o Options) withDefaults() Options {
	sched.RunDefaults(&o.MaxSteps, &o.CheckEvery, 100_000_000)
	return o
}

// StopReason explains why Run returned.
type StopReason int

// Stop reasons.
const (
	ReasonMaxSteps StopReason = iota + 1
	ReasonHalted
	ReasonCanceled
)

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case ReasonMaxSteps:
		return "max-steps"
	case ReasonHalted:
		return "halted"
	case ReasonCanceled:
		return "canceled"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// Result summarizes a run.
type Result struct {
	Steps       int64
	Effective   int64
	Reason      StopReason
	FirstHalted int // id of the first agent to halt, or -1
}

// World is one population instance. Not safe for concurrent use; run
// independent worlds in parallel instead (see internal/runner).
type World[S any] struct {
	n      int
	opts   Options
	proto  Protocol[S]
	rng    *wrand.RNG
	states []S
	halted []bool
	// agents is the scheduler/fault layer; nil (the default, and the only
	// state a zero profile produces) keeps the historical uniform draw and
	// its exact RNG stream.
	agents *sched.Agents

	steps, effective int64
	haltedCount      int
	firstHalted      int

	// metrics, when non-nil, receives fleet-wide counter deltas on the
	// CheckEvery cadence. The pub* fields track what has already been
	// published so restored step counts are never re-counted.
	metrics                          *obs.EngineMetrics
	faultEvents                      int64
	pubSteps, pubEffective, pubFault int64
}

// New builds a population of n agents in their initial states. n must be at
// least 2.
func New[S any](n int, proto Protocol[S], opts Options) *World[S] {
	if n < 2 {
		panic(fmt.Sprintf("pop: population size %d < 2", n))
	}
	w := &World[S]{
		n:           n,
		opts:        opts.withDefaults(),
		proto:       proto,
		rng:         wrand.NewRNG(opts.Seed),
		states:      make([]S, n),
		halted:      make([]bool, n),
		firstHalted: -1,
	}
	for i := 0; i < n; i++ {
		w.states[i] = proto.InitialState(i, n)
		if proto.Halted(w.states[i]) {
			w.halted[i] = true
			w.haltedCount++
			if w.firstHalted < 0 {
				w.firstHalted = i
			}
		}
	}
	return w
}

// ApplyProfile installs a scheduler/fault profile on a freshly built
// World (call it before stepping; a snapshot restore re-installs the
// profile first and then overwrites the layer's state). A profile that
// normalizes to the zero value leaves the engine on its historical
// uniform path, byte-identical to a profile-less run.
func (w *World[S]) ApplyProfile(p sched.Profile) error {
	np, err := p.Normalize(sched.EnginePop, w.n)
	if err != nil {
		return err
	}
	if np.IsZero() {
		w.agents = nil
		return nil
	}
	w.agents = sched.NewAgents(np, w.n, w.opts.Seed)
	return nil
}

// Agents exposes the scheduler/fault layer, nil when none is installed.
func (w *World[S]) Agents() *sched.Agents { return w.agents }

// N returns the founding population size (arrivals and departures do not
// change it; see Present).
func (w *World[S]) N() int { return w.n }

// Present returns the number of non-departed agents.
func (w *World[S]) Present() int {
	if w.agents == nil {
		return w.n
	}
	return w.agents.Present()
}

// Steps returns the number of scheduler selections so far.
func (w *World[S]) Steps() int64 { return w.steps }

// Effective returns the number of effective interactions so far.
func (w *World[S]) Effective() int64 { return w.effective }

// State returns agent id's current state.
func (w *World[S]) State(id int) S { return w.states[id] }

// HaltedCount returns the number of halted agents.
func (w *World[S]) HaltedCount() int { return w.haltedCount }

// FirstHalted returns the id of the first agent that halted, or -1.
func (w *World[S]) FirstHalted() int { return w.firstHalted }

// FindNode returns the smallest present agent id whose state satisfies
// pred, or -1. Departed agents' states are stale and never matched.
func (w *World[S]) FindNode(pred func(S) bool) int {
	for i := range w.states {
		if w.present(i) && pred(w.states[i]) {
			return i
		}
	}
	return -1
}

// CountNodes returns how many present agent states satisfy pred.
func (w *World[S]) CountNodes(pred func(S) bool) int {
	n := 0
	for i := range w.states {
		if w.present(i) && pred(w.states[i]) {
			n++
		}
	}
	return n
}

func (w *World[S]) present(id int) bool {
	return w.agents == nil || w.agents.IsPresent(id)
}

// Step performs one pairwise interaction under the installed scheduler
// (the uniform random draw when none is) and reports whether it was
// effective.
func (w *World[S]) Step() bool {
	if w.agents != nil {
		return w.stepScheduled()
	}
	w.steps++
	i := w.rng.Intn(w.n)
	j := w.rng.Intn(w.n - 1)
	if j >= i {
		j++
	}
	na, nb, effective := w.proto.Apply(w.states[i], w.states[j])
	if !effective {
		return false
	}
	w.effective++
	w.apply(i, na)
	w.apply(j, nb)
	return true
}

// stepScheduled is Step under a scheduler/fault profile: the policy draws
// the pair, and when no pair is schedulable (fewer than two active
// agents) the step clock fast-forwards toward the next fault event — only
// a fault can make progress possible again.
func (w *World[S]) stepScheduled() bool {
	w.steps++
	i, j, ok := w.agents.Pick(w.rng)
	if !ok {
		next := w.agents.NextPending()
		if next > w.opts.MaxSteps {
			next = w.opts.MaxSteps
		}
		if next > w.steps {
			w.steps = next
		}
		return false
	}
	na, nb, effective := w.proto.Apply(w.states[i], w.states[j])
	if !effective {
		return false
	}
	w.effective++
	w.apply(i, na)
	w.apply(j, nb)
	return true
}

// SetMetrics attaches a fleet-wide metrics sink. Call it after any
// snapshot restore: the current totals become the published baseline,
// so a resumed run only ever publishes steps it simulated itself.
// Publishing happens on the CheckEvery cadence and at run exit; the
// per-step hot path is untouched.
func (w *World[S]) SetMetrics(m *obs.EngineMetrics) {
	w.metrics = m
	w.pubSteps, w.pubEffective, w.pubFault = w.steps, w.effective, w.faultEvents
	if m != nil {
		m.Runs.Inc()
	}
}

// publishMetrics flushes counter deltas accumulated since the last
// publish. Deltas, not absolute stores: concurrent runs on one daemon
// share the per-engine counters.
func (w *World[S]) publishMetrics() {
	if w.metrics == nil {
		return
	}
	w.metrics.Steps.Add(w.steps - w.pubSteps)
	w.metrics.Effective.Add(w.effective - w.pubEffective)
	w.metrics.FaultEvents.Add(w.faultEvents - w.pubFault)
	w.pubSteps, w.pubEffective, w.pubFault = w.steps, w.effective, w.faultEvents
}

// applyFaults drains every fault event due at the current step. It runs
// on the CheckEvery cadence (and after fast-forwards), so fault times are
// quantized to the check boundary; the event *order* and count are exact.
func (w *World[S]) applyFaults() {
	if w.agents == nil {
		return
	}
	for {
		ev, ok := w.agents.NextDue(w.steps)
		if !ok {
			return
		}
		w.faultEvents++
		switch ev {
		case sched.EvCrash:
			w.agents.CrashOne()
		case sched.EvRecover:
			w.agents.RecoverOne()
		case sched.EvFreeze:
			w.agents.FreezeOne()
		case sched.EvThaw:
			w.agents.ThawOne()
		case sched.EvArrive:
			id := w.agents.ArriveOne()
			s := w.proto.InitialState(id, w.n)
			w.states = append(w.states, s)
			w.halted = append(w.halted, false)
			if w.proto.Halted(s) {
				w.halted[id] = true
				w.haltedCount++
				if w.firstHalted < 0 {
					w.firstHalted = id
				}
			}
		case sched.EvDepart:
			if id, ok := w.agents.DepartOne(); ok && w.halted[id] {
				w.halted[id] = false
				w.haltedCount--
			}
		}
	}
}

func (w *World[S]) apply(id int, s S) {
	w.states[id] = s
	h := w.proto.Halted(s)
	if h && !w.halted[id] {
		w.halted[id] = true
		w.haltedCount++
		if w.firstHalted < 0 {
			w.firstHalted = id
		}
	} else if !h && w.halted[id] {
		w.halted[id] = false
		w.haltedCount--
	}
}

// stopped reports whether a halting stop condition currently holds.
// Under churn "all" means all present agents; a crashed agent that never
// halted still blocks the all-halted condition — exactly the guarantee
// erosion the fault experiments measure.
func (w *World[S]) stopped() bool {
	all := w.n
	if w.agents != nil {
		all = w.agents.Present()
	}
	return (w.opts.StopWhenAnyHalted && w.haltedCount > 0) ||
		(w.opts.StopWhenAllHalted && all > 0 && w.haltedCount == all)
}

// Run executes steps until a stop condition fires. Stop conditions already
// true at entry (for example a protocol whose initial configuration
// contains a halted agent) return immediately without stepping. It is
// RunContext under a background context.
func (w *World[S]) Run() Result {
	return w.RunContext(context.Background())
}

// RunContext is Run under a cancelable context: cancellation (or deadline
// expiry) is observed every Options.CheckEvery steps and stops the run
// with ReasonCanceled. The per-step hot path is untouched and stays
// allocation-free.
func (w *World[S]) RunContext(ctx context.Context) Result {
	reason := ReasonMaxSteps
	switch {
	case ctx.Err() != nil:
		reason = ReasonCanceled
		return Result{Steps: w.steps, Effective: w.effective,
			Reason: reason, FirstHalted: w.firstHalted}
	case w.stopped():
		reason = ReasonHalted
		return Result{Steps: w.steps, Effective: w.effective,
			Reason: reason, FirstHalted: w.firstHalted}
	}
	nextCheck := w.steps + w.opts.CheckEvery
	for w.steps < w.opts.MaxSteps {
		w.Step()
		if w.stopped() {
			reason = ReasonHalted
			break
		}
		if w.steps >= nextCheck {
			nextCheck = w.steps + w.opts.CheckEvery
			w.applyFaults()
			if w.stopped() {
				reason = ReasonHalted
				break
			}
			if ctx.Err() != nil {
				reason = ReasonCanceled
				break
			}
			w.publishMetrics()
			if w.opts.Progress != nil {
				w.opts.Progress(w.steps)
			}
		}
	}
	w.publishMetrics()
	return Result{
		Steps:       w.steps,
		Effective:   w.effective,
		Reason:      reason,
		FirstHalted: w.firstHalted,
	}
}
