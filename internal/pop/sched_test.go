package pop

import (
	"testing"

	"shapesol/internal/sched"
)

// TestUniformStreamStability pins the exact Result of a fixed seed: the
// scheduler refactor must not move the default uniform draw by a single
// RNG call, with or without a zero profile applied. The constants were
// recorded from the pre-refactor engine.
func TestUniformStreamStability(t *testing.T) {
	want := Result{Steps: 175, Effective: 175, Reason: ReasonHalted, FirstHalted: 19}
	run := func(apply bool) Result {
		w := New(64, halter{}, Options{Seed: 0xC0FFEE, StopWhenAllHalted: true})
		if apply {
			if err := w.ApplyProfile(sched.Profile{}); err != nil {
				t.Fatal(err)
			}
			if w.Agents() != nil {
				t.Fatal("zero profile installed a scheduler layer")
			}
		}
		return w.Run()
	}
	if got := run(false); got != want {
		t.Fatalf("bare run drifted: %+v, want %+v", got, want)
	}
	if got := run(true); got != want {
		t.Fatalf("zero-profile run drifted: %+v, want %+v", got, want)
	}
}

func TestApplyProfileRejectsInvalid(t *testing.T) {
	w := New(8, pairCounter{}, Options{Seed: 1})
	if err := w.ApplyProfile(sched.Profile{Scheduler: "bogus"}); err == nil {
		t.Fatal("bogus scheduler accepted")
	}
	if err := w.ApplyProfile(sched.Profile{Scheduler: sched.KindWeighted, Rates: []int64{0}}); err == nil {
		t.Fatal("invalid rate accepted")
	}
}

func TestCrashStopStarvesRun(t *testing.T) {
	// Crashes every step until only one agent is active: no pair is
	// schedulable, so the run must fast-forward to its budget instead of
	// halting or spinning.
	w := New(8, pairCounter{}, Options{Seed: 3, MaxSteps: 10_000, CheckEvery: 1})
	if err := w.ApplyProfile(sched.Profile{CrashEvery: 1, MaxCrashes: 7}); err != nil {
		t.Fatal(err)
	}
	res := w.Run()
	if res.Reason != ReasonMaxSteps || res.Steps != 10_000 {
		t.Fatalf("%+v, want max-steps at 10000", res)
	}
	if w.Agents().Active() != 1 {
		t.Fatalf("active = %d, want 1", w.Agents().Active())
	}
	if w.Present() != 8 {
		t.Fatalf("present = %d, want 8 (crash-stop keeps agents present)", w.Present())
	}
}

func TestCrashBlocksAllHalted(t *testing.T) {
	// halter halts agents pairwise; an early-crashed agent that never
	// interacted can never halt, so StopWhenAllHalted cannot fire and the
	// budget is the only exit — the guarantee erosion E17 measures.
	w := New(16, halter{}, Options{Seed: 2, MaxSteps: 5_000, CheckEvery: 1, StopWhenAllHalted: true})
	if err := w.ApplyProfile(sched.Profile{CrashEvery: 1, MaxCrashes: 15}); err != nil {
		t.Fatal(err)
	}
	res := w.Run()
	if res.Reason == ReasonHalted && w.HaltedCount() == w.Present() {
		// Only possible if every agent interacted before crashing; with
		// a crash per step that cannot happen.
		t.Fatalf("all-halted fired under crash-stop: %+v", res)
	}
}

func TestChurnGrowsAndShrinksPopulation(t *testing.T) {
	w := New(10, pairCounter{}, Options{Seed: 4, MaxSteps: 10_000, CheckEvery: 16})
	if err := w.ApplyProfile(sched.Profile{ArriveEvery: 100, MaxChurn: 20}); err != nil {
		t.Fatal(err)
	}
	res := w.Run()
	if res.Reason != ReasonMaxSteps {
		t.Fatalf("%+v", res)
	}
	if w.Present() != 30 {
		t.Fatalf("present = %d, want 30 after 20 arrivals", w.Present())
	}
	if w.N() != 10 {
		t.Fatalf("founding N changed to %d", w.N())
	}

	w2 := New(10, pairCounter{}, Options{Seed: 4, MaxSteps: 10_000, CheckEvery: 16})
	if err := w2.ApplyProfile(sched.Profile{DepartEvery: 100, MaxChurn: 6}); err != nil {
		t.Fatal(err)
	}
	w2.Run()
	if w2.Present() != 4 {
		t.Fatalf("present = %d, want 4 after 6 departures", w2.Present())
	}
	// CountNodes only sees present agents.
	if got := w2.CountNodes(func(int) bool { return true }); got != 4 {
		t.Fatalf("CountNodes = %d, want 4", got)
	}
}

func TestFaultedSnapshotResumeIdentity(t *testing.T) {
	profile := sched.Profile{
		Scheduler: sched.KindWeighted, Rates: []int64{1, 5},
		CrashEvery: 300, RecoverEvery: 500,
		ArriveEvery: 400, DepartEvery: 600, MaxChurn: 12,
	}
	build := func(budget int64) *World[int] {
		w := New(24, pairCounter{}, Options{Seed: 11, MaxSteps: budget, CheckEvery: 32})
		if err := w.ApplyProfile(profile); err != nil {
			t.Fatal(err)
		}
		return w
	}
	full := build(40_000)
	fullRes := full.Run()

	// Capture on a CheckEvery boundary — the cadence snapshots are taken
	// on in production (the Progress callback) — so the resumed run's
	// fault-application boundaries line up with the uninterrupted run's.
	head := build(17_024)
	head.Run()
	m := head.Memento()

	resumed := build(40_000)
	if err := resumed.RestoreMemento(m); err != nil {
		t.Fatal(err)
	}
	res := resumed.Run()
	if res != fullRes {
		t.Fatalf("resumed result %+v, want %+v", res, fullRes)
	}
	if resumed.Present() != full.Present() {
		t.Fatalf("present %d, want %d", resumed.Present(), full.Present())
	}
	if len(resumed.states) != len(full.states) {
		t.Fatalf("state table %d, want %d", len(resumed.states), len(full.states))
	}
	for i := range full.states {
		if resumed.states[i] != full.states[i] {
			t.Fatalf("state %d: %v, want %v", i, resumed.states[i], full.states[i])
		}
	}
}

func TestRestoreRejectsProfileMismatch(t *testing.T) {
	faulted := New(8, pairCounter{}, Options{Seed: 1, CheckEvery: 8})
	if err := faulted.ApplyProfile(sched.Profile{CrashEvery: 50}); err != nil {
		t.Fatal(err)
	}
	m := faulted.Memento()

	bare := New(8, pairCounter{}, Options{Seed: 1})
	if err := bare.RestoreMemento(m); err == nil {
		t.Fatal("faulted memento restored into profile-less world")
	}
	bareM := New(8, pairCounter{}, Options{Seed: 1}).Memento()
	if err := faulted.RestoreMemento(bareM); err == nil {
		t.Fatal("profile-less memento restored into faulted world")
	}
}

// TestScheduledRunHalts exercises the non-uniform policies end to end on
// a halting protocol: the run must still complete under each policy.
func TestScheduledRunHalts(t *testing.T) {
	for _, p := range []sched.Profile{
		{Scheduler: sched.KindWeighted, Rates: []int64{1, 10}},
		{Scheduler: sched.KindClustered, BlockSize: 8, BiasPct: 90},
		{Scheduler: sched.KindAdversarialDelay, StarvePct: 25, FairnessBound: 64},
	} {
		w := New(32, halter{}, Options{Seed: 6, StopWhenAllHalted: true, MaxSteps: 1_000_000})
		if err := w.ApplyProfile(p); err != nil {
			t.Fatalf("%s: %v", p.Scheduler, err)
		}
		res := w.Run()
		if res.Reason != ReasonHalted {
			t.Fatalf("%s: %+v", p.Scheduler, res)
		}
	}
}
