package pop

import (
	"math"
	"testing"
)

// pairCounter records which unordered pairs interact.
type pairCounter struct{}

func (pairCounter) InitialState(id, n int) any { return id }
func (pairCounter) Apply(a, b any) (any, any, bool) {
	return a, b, true
}
func (pairCounter) Halted(any) bool { return false }

// halter halts an agent on its first interaction.
type halter struct{}

func (halter) InitialState(id, n int) any { return false }
func (halter) Apply(a, b any) (any, any, bool) {
	return true, true, true
}
func (halter) Halted(s any) bool { return s.(bool) }

func TestUniformPairSelection(t *testing.T) {
	// With n=4 there are 6 unordered pairs; each must be selected about
	// trials/6 times. We track pairs through a stateful wrapper.
	const n, trials = 4, 60000
	counts := map[[2]int]int{}
	w := New(n, pairCounter{}, Options{Seed: 3})
	// Re-run selection by instrumenting Step via states: instead, sample
	// using the same RNG approach: drive Step and recover the pair from
	// the interaction by marking states.
	type probe struct{ last [2]int }
	_ = probe{}
	// Simpler: use a protocol that records ids into a shared map via
	// closure.
	rec := &recorder{counts: counts}
	w = New(n, rec, Options{Seed: 3})
	for i := 0; i < trials; i++ {
		w.Step()
	}
	if len(counts) != 6 {
		t.Fatalf("observed %d distinct pairs, want 6", len(counts))
	}
	want := float64(trials) / 6
	for pair, got := range counts {
		if math.Abs(float64(got)-want) > 6*math.Sqrt(want) {
			t.Errorf("pair %v selected %d times, want ~%.0f", pair, got, want)
		}
	}
}

// recorder notes every interacting pair. States are the agent ids.
type recorder struct {
	counts map[[2]int]int
}

func (r *recorder) InitialState(id, n int) any { return id }
func (r *recorder) Apply(a, b any) (any, any, bool) {
	i, j := a.(int), b.(int)
	if i > j {
		i, j = j, i
	}
	r.counts[[2]int{i, j}]++
	return a, b, false
}
func (r *recorder) Halted(any) bool { return false }

func TestStopWhenAnyHalted(t *testing.T) {
	w := New(5, halter{}, Options{Seed: 1, StopWhenAnyHalted: true})
	res := w.Run()
	if res.Reason != ReasonHalted {
		t.Fatalf("reason %v", res.Reason)
	}
	if res.FirstHalted < 0 || w.HaltedCount() < 1 {
		t.Fatal("no halted agent recorded")
	}
	if res.Steps != 1 {
		t.Fatalf("steps = %d, want 1", res.Steps)
	}
}

func TestStopWhenAllHalted(t *testing.T) {
	w := New(4, halter{}, Options{Seed: 2, StopWhenAllHalted: true})
	res := w.Run()
	if res.Reason != ReasonHalted || w.HaltedCount() != 4 {
		t.Fatalf("reason=%v halted=%d", res.Reason, w.HaltedCount())
	}
}

func TestMaxStepsBudget(t *testing.T) {
	w := New(3, pairCounter{}, Options{Seed: 1, MaxSteps: 100})
	res := w.Run()
	if res.Reason != ReasonMaxSteps || res.Steps != 100 {
		t.Fatalf("%+v", res)
	}
	if res.Effective != 100 {
		t.Fatalf("effective = %d", res.Effective)
	}
}

func TestDeterministicSeeds(t *testing.T) {
	run := func(seed int64) int64 {
		w := New(6, halter{}, Options{Seed: seed, StopWhenAllHalted: true})
		return w.Run().Steps
	}
	if run(7) != run(7) {
		t.Fatal("same seed differs")
	}
}

func TestTooSmallPopulationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n < 2")
		}
	}()
	New(1, halter{}, Options{})
}
