package pop

import (
	"math"
	"testing"

	"shapesol/internal/obs"
)

// pairCounter is an always-effective protocol over plain int states.
type pairCounter struct{}

func (pairCounter) InitialState(id, n int) int { return id }
func (pairCounter) Apply(a, b int) (int, int, bool) {
	return a, b, true
}
func (pairCounter) Halted(int) bool { return false }

// halter halts an agent on its first interaction.
type halter struct{}

func (halter) InitialState(id, n int) bool { return false }
func (halter) Apply(a, b bool) (bool, bool, bool) {
	return true, true, true
}
func (halter) Halted(s bool) bool { return s }

// bornHalted starts every agent already halted.
type bornHalted struct{}

func (bornHalted) InitialState(id, n int) bool { return true }
func (bornHalted) Apply(a, b bool) (bool, bool, bool) {
	return a, b, false
}
func (bornHalted) Halted(s bool) bool { return s }

func TestUniformPairSelection(t *testing.T) {
	// With n=4 there are 6 unordered pairs; each must be selected about
	// trials/6 times. The recorder protocol notes every interacting pair.
	const n, trials = 4, 60000
	counts := map[[2]int]int{}
	rec := &recorder{counts: counts}
	w := New(n, rec, Options{Seed: 3})
	for i := 0; i < trials; i++ {
		w.Step()
	}
	if len(counts) != 6 {
		t.Fatalf("observed %d distinct pairs, want 6", len(counts))
	}
	want := float64(trials) / 6
	for pair, got := range counts {
		if math.Abs(float64(got)-want) > 6*math.Sqrt(want) {
			t.Errorf("pair %v selected %d times, want ~%.0f", pair, got, want)
		}
	}
}

// recorder notes every interacting pair. States are the agent ids.
type recorder struct {
	counts map[[2]int]int
}

func (r *recorder) InitialState(id, n int) int { return id }
func (r *recorder) Apply(a, b int) (int, int, bool) {
	if a > b {
		a, b = b, a
	}
	r.counts[[2]int{a, b}]++
	return a, b, false
}
func (r *recorder) Halted(int) bool { return false }

func TestStopWhenAnyHalted(t *testing.T) {
	w := New(5, halter{}, Options{Seed: 1, StopWhenAnyHalted: true})
	res := w.Run()
	if res.Reason != ReasonHalted {
		t.Fatalf("reason %v", res.Reason)
	}
	if res.FirstHalted < 0 || w.HaltedCount() < 1 {
		t.Fatal("no halted agent recorded")
	}
	if res.Steps != 1 {
		t.Fatalf("steps = %d, want 1", res.Steps)
	}
}

func TestStopWhenAllHalted(t *testing.T) {
	w := New(4, halter{}, Options{Seed: 2, StopWhenAllHalted: true})
	res := w.Run()
	if res.Reason != ReasonHalted || w.HaltedCount() != 4 {
		t.Fatalf("reason=%v halted=%d", res.Reason, w.HaltedCount())
	}
	// Every agent halts on its first interaction, so the run needs at
	// least ceil(n/2) and at most MaxSteps selections.
	if res.Steps < 2 {
		t.Fatalf("steps = %d, want >= 2", res.Steps)
	}
}

func TestRunStopsImmediatelyWhenEntryConditionHolds(t *testing.T) {
	// A population born halted must not consume any scheduler steps.
	for _, opts := range []Options{
		{Seed: 1, StopWhenAnyHalted: true},
		{Seed: 1, StopWhenAllHalted: true},
	} {
		w := New(3, bornHalted{}, opts)
		res := w.Run()
		if res.Reason != ReasonHalted {
			t.Fatalf("opts %+v: reason %v, want halted", opts, res.Reason)
		}
		if res.Steps != 0 {
			t.Fatalf("opts %+v: steps = %d, want 0", opts, res.Steps)
		}
		if res.FirstHalted != 0 {
			t.Fatalf("opts %+v: first halted = %d, want 0", opts, res.FirstHalted)
		}
	}
}

func TestMaxStepsBudget(t *testing.T) {
	w := New(3, pairCounter{}, Options{Seed: 1, MaxSteps: 100})
	res := w.Run()
	if res.Reason != ReasonMaxSteps || res.Steps != 100 {
		t.Fatalf("%+v", res)
	}
	if res.Effective != 100 {
		t.Fatalf("effective = %d", res.Effective)
	}
}

func TestMaxStepsWithoutStopConditions(t *testing.T) {
	// With no halting stop condition Run must exhaust the budget even
	// though agents halt along the way.
	w := New(4, halter{}, Options{Seed: 5, MaxSteps: 50})
	res := w.Run()
	if res.Reason != ReasonMaxSteps || res.Steps != 50 {
		t.Fatalf("%+v", res)
	}
	if w.HaltedCount() != 4 {
		t.Fatalf("halted = %d, want 4", w.HaltedCount())
	}
}

func TestHaltedCountUnwindsOnUnhalt(t *testing.T) {
	// A protocol may bring a halted agent back; the count must follow.
	w := New(2, toggler{}, Options{Seed: 1})
	w.Step() // both halt
	if w.HaltedCount() != 2 {
		t.Fatalf("halted = %d, want 2", w.HaltedCount())
	}
	w.Step() // both unhalt
	if w.HaltedCount() != 0 {
		t.Fatalf("halted = %d, want 0", w.HaltedCount())
	}
}

// toggler flips both agents' halted flag on every interaction.
type toggler struct{}

func (toggler) InitialState(id, n int) bool { return false }
func (toggler) Apply(a, b bool) (bool, bool, bool) {
	return !a, !b, true
}
func (toggler) Halted(s bool) bool { return s }

func TestDeterministicSeeds(t *testing.T) {
	run := func(seed int64) int64 {
		w := New(6, halter{}, Options{Seed: seed, StopWhenAllHalted: true})
		return w.Run().Steps
	}
	if run(7) != run(7) {
		t.Fatal("same seed differs")
	}
}

func TestTooSmallPopulationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n < 2")
		}
	}()
	New(1, halter{}, Options{})
}

// TestStepZeroAllocs is the allocation regression guard: with a value-type
// state the generic engine's steady-state Step must not touch the heap.
func TestStepZeroAllocs(t *testing.T) {
	w := New(64, pairCounter{}, Options{Seed: 9})
	for i := 0; i < 1_000; i++ { // settle any warm-up effects
		w.Step()
	}
	if allocs := testing.AllocsPerRun(1_000, func() { w.Step() }); allocs != 0 {
		t.Fatalf("Step allocates %.1f times per call, want 0", allocs)
	}
}

// TestStepZeroAllocsWithMetrics proves the observability layer keeps
// the hot loop alloc-free: with a fleet metrics sink attached, stepping
// and even publishing the counter deltas every step touches only local
// int64 fields and atomic adds.
func TestStepZeroAllocsWithMetrics(t *testing.T) {
	w := New(64, pairCounter{}, Options{Seed: 9})
	w.SetMetrics(obs.NewEngineMetrics(obs.NewRegistry(), "pop"))
	for i := 0; i < 1_000; i++ {
		w.Step()
	}
	allocs := testing.AllocsPerRun(1_000, func() {
		w.Step()
		w.publishMetrics()
	})
	if allocs != 0 {
		t.Fatalf("instrumented Step allocates %.1f times per call, want 0", allocs)
	}
}
