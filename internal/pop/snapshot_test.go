package pop

import (
	"reflect"
	"testing"
)

// TestSnapshotResumeIdentical is the engine-level determinism guarantee:
// capture a memento mid-run, finish the run, then restore the memento
// into a fresh world and finish that — both runs must agree on every
// observable (Result and final states).
func TestSnapshotResumeIdentical(t *testing.T) {
	opts := Options{Seed: 5, MaxSteps: 20_000}
	base := New(64, pairCounter{}, opts)
	for i := 0; i < 7_000; i++ {
		base.Step()
	}
	m := base.Memento()
	baseRes := base.Run()

	resumed := New(64, pairCounter{}, opts)
	if err := resumed.RestoreMemento(m); err != nil {
		t.Fatal(err)
	}
	if resumed.Steps() != 7_000 {
		t.Fatalf("restored steps = %d, want 7000", resumed.Steps())
	}
	resumedRes := resumed.Run()
	if baseRes != resumedRes {
		t.Fatalf("results diverged:\nbase    %+v\nresumed %+v", baseRes, resumedRes)
	}
	for id := 0; id < base.N(); id++ {
		if base.State(id) != resumed.State(id) {
			t.Fatalf("state %d diverged: %v vs %v", id, base.State(id), resumed.State(id))
		}
	}
}

// TestSnapshotCaptureIsPassive checks capturing a memento does not
// perturb the trajectory.
func TestSnapshotCaptureIsPassive(t *testing.T) {
	opts := Options{Seed: 2, MaxSteps: 5_000}
	plain := New(32, pairCounter{}, opts)
	observed := New(32, pairCounter{}, opts)
	for i := 0; i < 5_000; i++ {
		plain.Step()
		observed.Memento()
		observed.Step()
	}
	if !reflect.DeepEqual(plain.Memento(), observed.Memento()) {
		t.Fatal("capturing mementos changed the trajectory")
	}
}

// TestSnapshotRestoresHaltTracking checks halted bookkeeping (including
// FirstHalted, which is history, not state) survives the round trip.
func TestSnapshotRestoresHaltTracking(t *testing.T) {
	base := New(6, halter{}, Options{Seed: 3, MaxSteps: 100, StopWhenAllHalted: true})
	base.Run()
	if base.HaltedCount() == 0 {
		t.Fatal("run produced no halted agents")
	}
	m := base.Memento()
	resumed := New(6, halter{}, Options{Seed: 99, MaxSteps: 100, StopWhenAllHalted: true})
	if err := resumed.RestoreMemento(m); err != nil {
		t.Fatal(err)
	}
	if resumed.HaltedCount() != base.HaltedCount() {
		t.Fatalf("halted count %d, want %d", resumed.HaltedCount(), base.HaltedCount())
	}
	if resumed.FirstHalted() != base.FirstHalted() {
		t.Fatalf("first halted %d, want %d", resumed.FirstHalted(), base.FirstHalted())
	}
}

// TestRestoreMementoRejectsMismatch covers the validation paths.
func TestRestoreMementoRejectsMismatch(t *testing.T) {
	m := New(8, pairCounter{}, Options{Seed: 1}).Memento()
	if err := New(9, pairCounter{}, Options{Seed: 1}).RestoreMemento(m); err == nil {
		t.Fatal("accepted a population-size mismatch")
	}
	bad := *m
	bad.States = bad.States[:3]
	bad.N = 8
	if err := New(8, pairCounter{}, Options{Seed: 1}).RestoreMemento(&bad); err == nil {
		t.Fatal("accepted a truncated state vector")
	}
	bad = *m
	bad.FirstHalted = 99
	if err := New(8, pairCounter{}, Options{Seed: 1}).RestoreMemento(&bad); err == nil {
		t.Fatal("accepted an out-of-range first-halted id")
	}
}
